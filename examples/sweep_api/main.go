// Sweep via the HTTP API: run a capacity x technology sweep against a
// running cactid-serve and print the Pareto frontier. Start the
// server first:
//
//	go run ./cmd/cactid-serve &
//	go run ./examples/sweep_api
//	go run ./examples/sweep_api -addr http://localhost:8080 -local=false
//
// With -local (the default) the same sweep also runs in-process
// through internal/explore, demonstrating that the API and the
// library return identical design points.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"cactid/internal/explore"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "cactid-serve base URL")
	local := flag.Bool("local", true, "also run the sweep in-process and compare")
	flag.Parse()

	// An L3-sized sweep: three technologies, four capacities, two
	// associativities — 24 design points, one HTTP request.
	req := explore.SweepRequest{
		Base: explore.SpecRequest{
			NodeNM:            32,
			BlockBytes:        64,
			Mode:              "seq",
			MaxPipelineStages: 6,
		},
		RAMs:            []string{"sram", "lp-dram", "comm-dram"},
		Capacities:      []string{"8MB", "16MB", "32MB", "64MB"},
		Associativities: []int{8, 16},
	}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	resp, err := client.Post(*addr+"/v1/pareto", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("POST /v1/pareto: %v (is cactid-serve running? go run ./cmd/cactid-serve)", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("server returned %s: %s", resp.Status, e["error"])
	}
	var env struct {
		Points  int `json:"points"`
		Skipped int `json:"skipped"`
		Results []struct {
			RAM        string  `json:"ram"`
			Capacity   int64   `json:"capacity_bytes"`
			Assoc      int     `json:"associativity"`
			AccessTime float64 `json:"access_time_s"`
			ReadEnergy float64 `json:"read_energy_j"`
			Leakage    float64 `json:"leakage_w"`
			Area       float64 `json:"area_m2"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("swept %d points (%d skipped); Pareto frontier over {access, energy, leakage, area}:\n",
		env.Points, env.Skipped)
	fmt.Println("  ram        capacity  assoc  access(ns)  read(nJ)  leak(W)  area(mm2)")
	for _, r := range env.Results {
		fmt.Printf("  %-9s %6dMB  %5d  %10.2f  %8.3f  %7.2f  %9.1f\n",
			r.RAM, r.Capacity>>20, r.Assoc,
			r.AccessTime*1e9, r.ReadEnergy*1e9, r.Leakage, r.Area*1e6)
	}

	if !*local {
		return
	}
	// The same sweep through the library: identical frontier.
	grid, err := req.Grid()
	if err != nil {
		log.Fatal(err)
	}
	eng := explore.New(explore.Options{})
	results, _ := eng.SweepGrid(context.Background(), grid)
	frontier := explore.Frontier(results)
	fmt.Printf("in-process sweep agrees: %d frontier points (server: %d), cache now holds %d entries\n",
		len(frontier), len(env.Results), eng.Stats().CacheEntries)
}
