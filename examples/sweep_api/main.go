// Sweep via the HTTP API: run a capacity x technology sweep against a
// running cactid-serve and print the Pareto frontier. Start the
// server first:
//
//	go run ./cmd/cactid-serve &
//	go run ./examples/sweep_api
//	go run ./examples/sweep_api -addr http://localhost:8080 -local=false
//
// With -local (the default) the same sweep also runs in-process
// through internal/explore, demonstrating that the API and the
// library return identical design points.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"cactid/internal/explore"
)

// postWithRetry POSTs the body, retrying 429/503 shed responses with
// exponential backoff and jitter. A Retry-After header (seconds)
// overrides the computed backoff — the server knows its queue better
// than the client does. Anything else is returned to the caller.
func postWithRetry(client *http.Client, url string, body []byte, attempts int) (*http.Response, error) {
	backoff := 250 * time.Millisecond
	for attempt := 1; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests &&
			resp.StatusCode != http.StatusServiceUnavailable {
			return resp, nil
		}
		delay := backoff
		if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
			delay = time.Duration(sec) * time.Second
		}
		resp.Body.Close()
		if attempt >= attempts {
			return nil, fmt.Errorf("server still shedding load (%s) after %d attempts", resp.Status, attempts)
		}
		// Full jitter: sleep U(0, delay] so retries from concurrent
		// clients spread out instead of re-colliding in lockstep.
		jittered := time.Duration(rand.Int63n(int64(delay))) + time.Millisecond
		log.Printf("server busy (%s), retry %d/%d in %v", resp.Status, attempt, attempts, jittered.Round(time.Millisecond))
		time.Sleep(jittered)
		backoff *= 2
	}
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "cactid-serve base URL")
	local := flag.Bool("local", true, "also run the sweep in-process and compare")
	flag.Parse()

	// An L3-sized sweep: three technologies, four capacities, two
	// associativities — 24 design points, one HTTP request.
	req := explore.SweepRequest{
		Base: explore.SpecRequest{
			NodeNM:            32,
			BlockBytes:        64,
			Mode:              "seq",
			MaxPipelineStages: 6,
		},
		RAMs:            []string{"sram", "lp-dram", "comm-dram"},
		Capacities:      []string{"8MB", "16MB", "32MB", "64MB"},
		Associativities: []int{8, 16},
	}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	resp, err := postWithRetry(client, *addr+"/v1/pareto", body, 5)
	if err != nil {
		log.Fatalf("POST /v1/pareto: %v (is cactid-serve running? go run ./cmd/cactid-serve)", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("server returned %s: %s", resp.Status, e["error"])
	}
	var env struct {
		Points  int `json:"points"`
		Skipped int `json:"skipped"`
		Results []struct {
			RAM        string  `json:"ram"`
			Capacity   int64   `json:"capacity_bytes"`
			Assoc      int     `json:"associativity"`
			AccessTime float64 `json:"access_time_s"`
			ReadEnergy float64 `json:"read_energy_j"`
			Leakage    float64 `json:"leakage_w"`
			Area       float64 `json:"area_m2"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("swept %d points (%d skipped); Pareto frontier over {access, energy, leakage, area}:\n",
		env.Points, env.Skipped)
	fmt.Println("  ram        capacity  assoc  access(ns)  read(nJ)  leak(W)  area(mm2)")
	for _, r := range env.Results {
		fmt.Printf("  %-9s %6dMB  %5d  %10.2f  %8.3f  %7.2f  %9.1f\n",
			r.RAM, r.Capacity>>20, r.Assoc,
			r.AccessTime*1e9, r.ReadEnergy*1e9, r.Leakage, r.Area*1e6)
	}

	if !*local {
		return
	}
	// The same sweep through the library: identical frontier.
	grid, err := req.Grid()
	if err != nil {
		log.Fatal(err)
	}
	eng := explore.New(explore.Options{})
	results, _ := eng.SweepGrid(context.Background(), grid)
	frontier := explore.Frontier(results)
	fmt.Printf("in-process sweep agrees: %d frontier points (server: %d), cache now holds %d entries\n",
		len(frontier), len(env.Results), eng.Stats().CacheEntries)
}
