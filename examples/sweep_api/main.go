// Sweep via the HTTP API: run a capacity x technology sweep against a
// running cactid-serve and print the Pareto frontier. Start the
// server first:
//
//	go run ./cmd/cactid-serve &
//	go run ./examples/sweep_api
//	go run ./examples/sweep_api -addr http://localhost:8080 -local=false
//
// With -local (the default) the same sweep also runs in-process
// through internal/explore, demonstrating that the API and the
// library return identical design points.
//
// With -job the example instead demonstrates durable sweep jobs: it
// builds and launches its own cactid-serve with a -store directory,
// submits a sweep job, interrupts the server mid-sweep, restarts it
// on the same store, and shows the job resuming from its checkpoint
// (already-solved points replay from the durable tier at zero solver
// cost). Run it from the repository root so `go build
// ./cmd/cactid-serve` resolves.
//
// With -cluster N the example spawns a whole sweep fabric on
// loopback — N worker nodes plus a coordinator with a durable store —
// submits a distributed sweep job, hard-kills the COORDINATOR
// mid-sweep with the same SIGKILL/resume harness the -job demo uses,
// restarts it on the same store, and shows the job resuming from its
// checkpoint while the surviving workers' warm caches replay the
// points they had already solved. It finishes by printing the
// coordinator's /v1/fabric dispatch/steal counters.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"cactid/internal/explore"
)

// postWithRetry POSTs the body, retrying only genuinely retryable
// shed responses — 429 Too Many Requests and 503 Service Unavailable
// — with exponential backoff and jitter. A Retry-After header
// (seconds) overrides the computed backoff: the server knows its
// queue better than the client does.
//
// Every other non-2xx status (400 malformed grid, 404 unknown job,
// 422 infeasible spec, ...) is terminal: retrying cannot change the
// answer, so the server's error body is surfaced immediately instead
// of being burned through the retry budget.
func postWithRetry(client *http.Client, url string, body []byte, attempts int) (*http.Response, error) {
	backoff := 250 * time.Millisecond
	for attempt := 1; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		switch {
		case resp.StatusCode < 300:
			return resp, nil
		case resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable:
			// Shed under load: fall through to the retry path below.
		default:
			var e map[string]string
			json.NewDecoder(resp.Body).Decode(&e)
			resp.Body.Close()
			return nil, fmt.Errorf("%s: %s", resp.Status, e["error"])
		}
		delay := backoff
		if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
			delay = time.Duration(sec) * time.Second
		}
		resp.Body.Close()
		if attempt >= attempts {
			return nil, fmt.Errorf("server still shedding load (%s) after %d attempts", resp.Status, attempts)
		}
		// Full jitter: sleep U(0, delay] so retries from concurrent
		// clients spread out instead of re-colliding in lockstep.
		jittered := time.Duration(rand.Int63n(int64(delay))) + time.Millisecond
		log.Printf("server busy (%s), retry %d/%d in %v", resp.Status, attempt, attempts, jittered.Round(time.Millisecond))
		time.Sleep(jittered)
		backoff *= 2
	}
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "cactid-serve base URL")
	local := flag.Bool("local", true, "also run the sweep in-process and compare")
	job := flag.Bool("job", false, "demo durable sweep jobs: submit, kill the server mid-sweep, resume")
	cluster := flag.Int("cluster", 0, "demo the sweep fabric: spawn N loopback workers + a coordinator, kill the coordinator mid-sweep, resume")
	flag.Parse()

	if *cluster > 0 {
		if err := runClusterDemo(*cluster); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *job {
		if err := runJobDemo(); err != nil {
			log.Fatal(err)
		}
		return
	}

	// An L3-sized sweep: three technologies, four capacities, two
	// associativities — 24 design points, one HTTP request.
	req := explore.SweepRequest{
		Base: explore.SpecRequest{
			NodeNM:            32,
			BlockBytes:        64,
			Mode:              "seq",
			MaxPipelineStages: 6,
		},
		RAMs:            []string{"sram", "lp-dram", "comm-dram"},
		Capacities:      []string{"8MB", "16MB", "32MB", "64MB"},
		Associativities: []int{8, 16},
	}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	resp, err := postWithRetry(client, *addr+"/v1/pareto", body, 5)
	if err != nil {
		log.Fatalf("POST /v1/pareto: %v (is cactid-serve running? go run ./cmd/cactid-serve)", err)
	}
	defer resp.Body.Close()
	var env struct {
		Points  int `json:"points"`
		Skipped int `json:"skipped"`
		Results []struct {
			RAM        string  `json:"ram"`
			Capacity   int64   `json:"capacity_bytes"`
			Assoc      int     `json:"associativity"`
			AccessTime float64 `json:"access_time_s"`
			ReadEnergy float64 `json:"read_energy_j"`
			Leakage    float64 `json:"leakage_w"`
			Area       float64 `json:"area_m2"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("swept %d points (%d skipped); Pareto frontier over {access, energy, leakage, area}:\n",
		env.Points, env.Skipped)
	fmt.Println("  ram        capacity  assoc  access(ns)  read(nJ)  leak(W)  area(mm2)")
	for _, r := range env.Results {
		fmt.Printf("  %-9s %6dMB  %5d  %10.2f  %8.3f  %7.2f  %9.1f\n",
			r.RAM, r.Capacity>>20, r.Assoc,
			r.AccessTime*1e9, r.ReadEnergy*1e9, r.Leakage, r.Area*1e6)
	}

	if !*local {
		return
	}
	// The same sweep through the library: identical frontier.
	grid, err := req.Grid()
	if err != nil {
		log.Fatal(err)
	}
	eng := explore.New(explore.Options{})
	results, _ := eng.SweepGrid(context.Background(), grid)
	frontier := explore.Frontier(results)
	fmt.Printf("in-process sweep agrees: %d frontier points (server: %d), cache now holds %d entries\n",
		len(frontier), len(env.Results), eng.Stats().CacheEntries)
}

// jobStatus is the slice of the job JSON this demo reads.
type jobStatus struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Points      int    `json:"points"`
	Completed   int    `json:"completed"`
	ResumedFrom int    `json:"resumed_from"`
}

// buildServe compiles cactid-serve into dir and returns the binary
// path; the demos run the real binary, not an in-process server.
func buildServe(dir string) (string, error) {
	bin := filepath.Join(dir, "cactid-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/cactid-serve")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return "", fmt.Errorf("go build ./cmd/cactid-serve: %w (run from the repository root)", err)
	}
	return bin, nil
}

// startServe launches bin on addr with extra flags and waits for
// /healthz before returning.
func startServe(client *http.Client, bin, addr string, extra ...string) (*exec.Cmd, error) {
	cmd := exec.Command(bin, append([]string{"-addr", addr}, extra...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	for i := 0; i < 200; i++ {
		if r, err := client.Get("http://" + addr + "/healthz"); err == nil {
			r.Body.Close()
			if r.StatusCode == http.StatusOK {
				return cmd, nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	return nil, fmt.Errorf("server on %s did not become healthy", addr)
}

// stopServe drains a server gracefully (SIGINT); the demos' mid-sweep
// kills use Process.Kill directly — that is the point of the exercise.
func stopServe(cmd *exec.Cmd) {
	cmd.Process.Signal(os.Interrupt)
	cmd.Wait()
}

// pollJob reads one job's status (without its result payload).
func pollJob(client *http.Client, base, id string) (jobStatus, error) {
	var st jobStatus
	r, err := client.Get(base + "/v1/sweep-jobs/" + id + "?results=false")
	if err != nil {
		return st, err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return st, fmt.Errorf("GET job: %s", r.Status)
	}
	return st, json.NewDecoder(r.Body).Decode(&st)
}

// runJobDemo builds cactid-serve, runs it with a durable store,
// submits a sweep job, interrupts the server once the first
// checkpoint lands, restarts it on the same store directory and
// watches the job resume to completion.
func runJobDemo() error {
	dir, err := os.MkdirTemp("", "cactid-job-demo-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bin, err := buildServe(dir)
	if err != nil {
		return err
	}

	const addr = "127.0.0.1:8093"
	base := "http://" + addr
	storeDir := filepath.Join(dir, "store")
	client := &http.Client{Timeout: time.Minute}

	// One worker and a small checkpoint granularity widen the window
	// in which the kill lands mid-sweep; neither changes the results.
	start := func() (*exec.Cmd, error) {
		return startServe(client, bin, addr, "-store", storeDir,
			"-workers", "1", "-checkpoint-every", "4")
	}
	stop := stopServe
	poll := func(id string) (jobStatus, error) { return pollJob(client, base, id) }

	fmt.Println("[1/4] starting cactid-serve with -store", storeDir)
	srv, err := start()
	if err != nil {
		return err
	}
	defer func() {
		if srv != nil {
			stop(srv)
		}
	}()

	// A 16-point L3-sized SRAM sweep: checkpoints land every 4 points,
	// and the large capacities keep each solve slow enough that the
	// interrupt below reliably lands mid-sweep.
	req := explore.SweepRequest{
		Base:            explore.SpecRequest{NodeNM: 32, BlockBytes: 64},
		RAMs:            []string{"sram"},
		Capacities:      []string{"8MB", "16MB", "32MB", "64MB"},
		Associativities: []int{1, 2, 4, 8},
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := postWithRetry(client, base+"/v1/sweep-jobs", body, 5)
	if err != nil {
		return fmt.Errorf("POST /v1/sweep-jobs: %w", err)
	}
	var st jobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}
	fmt.Printf("[2/4] submitted job %s (%d points)\n", st.ID, st.Points)

	// Hard-kill the server — SIGKILL, no drain, no graceful close.
	// The job record was checkpointed at submit and every solved
	// point is already in the durable tier, so nothing is lost; the
	// store's crash recovery handles whatever half-written tail the
	// kill leaves behind.
	if st, err = poll(st.ID); err != nil {
		return err
	}
	fmt.Printf("[3/4] hard-killing the server (SIGKILL) at %d/%d checkpointed points\n", st.Completed, st.Points)
	srv.Process.Kill()
	srv.Wait()
	srv = nil

	fmt.Println("[4/4] restarting on the same store; the job resumes from its checkpoint")
	if srv, err = start(); err != nil {
		return err
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		cur, err := poll(st.ID)
		if err != nil {
			return err
		}
		if cur.State != "running" {
			st = cur
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still running after resume", st.ID)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if st.State != "done" {
		return fmt.Errorf("job %s ended %q after resume", st.ID, st.State)
	}
	fmt.Printf("done: job %s resumed from checkpoint %d and completed %d/%d points\n",
		st.ID, st.ResumedFrom, st.Completed, st.Points)
	fmt.Println("(any points solved before the kill replayed from the durable tier — no repeat solver work)")
	return nil
}

// runClusterDemo spawns a loopback sweep fabric — n worker nodes plus
// a coordinator with a durable store — submits a distributed sweep
// job, hard-kills the coordinator mid-sweep, restarts it against the
// same store and the still-running workers, and watches the job
// resume: the checkpointed prefix replays from the store, and points
// the workers had already solved past the checkpoint replay from
// their warm caches instead of re-running the solver.
func runClusterDemo(n int) error {
	dir, err := os.MkdirTemp("", "cactid-cluster-demo-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bin, err := buildServe(dir)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: time.Minute}

	// Workers are plain cactid-serve processes; they outlive the
	// coordinator kill below, which is what keeps their caches warm.
	fmt.Printf("[1/5] starting %d worker nodes\n", n)
	workerURLs := make([]string, n)
	for i := range workerURLs {
		addr := fmt.Sprintf("127.0.0.1:%d", 8094+i)
		w, err := startServe(client, bin, addr, "-workers", "1")
		if err != nil {
			return err
		}
		defer stopServe(w)
		workerURLs[i] = "http://" + addr
	}

	const coordAddr = "127.0.0.1:8093"
	base := "http://" + coordAddr
	storeDir := filepath.Join(dir, "store")
	start := func() (*exec.Cmd, error) {
		return startServe(client, bin, coordAddr, "-store", storeDir,
			"-checkpoint-every", "4", "-coordinator",
			"-worker-nodes", strings.Join(workerURLs, ","),
			"-heartbeat-every", "500ms")
	}

	fmt.Println("[2/5] starting the coordinator with -store", storeDir)
	co, err := start()
	if err != nil {
		return err
	}
	defer func() {
		if co != nil {
			stopServe(co)
		}
	}()

	// The same slow L3-sized grid as the -job demo: large SRAM solves
	// keep the SIGKILL window wide open.
	req := explore.SweepRequest{
		Base:            explore.SpecRequest{NodeNM: 32, BlockBytes: 64},
		RAMs:            []string{"sram"},
		Capacities:      []string{"8MB", "16MB", "32MB", "64MB"},
		Associativities: []int{1, 2, 4, 8},
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := postWithRetry(client, base+"/v1/sweep-jobs", body, 5)
	if err != nil {
		return fmt.Errorf("POST /v1/sweep-jobs: %w", err)
	}
	var st jobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}
	fmt.Printf("[3/5] submitted job %s (%d points, sharded across %d workers)\n", st.ID, st.Points, n)

	if st, err = pollJob(client, base, st.ID); err != nil {
		return err
	}
	fmt.Printf("[4/5] hard-killing the COORDINATOR (SIGKILL) at %d/%d checkpointed points; workers stay up\n",
		st.Completed, st.Points)
	co.Process.Kill()
	co.Wait()
	co = nil

	fmt.Println("[5/5] restarting the coordinator on the same store; the job resumes against the warm workers")
	if co, err = start(); err != nil {
		return err
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		cur, err := pollJob(client, base, st.ID)
		if err != nil {
			return err
		}
		if cur.State != "running" {
			st = cur
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still running after resume", st.ID)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if st.State != "done" {
		return fmt.Errorf("job %s ended %q after resume", st.ID, st.State)
	}
	fmt.Printf("done: job %s resumed from checkpoint %d and completed %d/%d points\n",
		st.ID, st.ResumedFrom, st.Completed, st.Points)

	// The coordinator's fabric counters tell the distribution story:
	// every worker healthy, chunks sharded by fingerprint owner, and
	// any straggler chunks stolen by idle workers.
	r, err := client.Get(base + "/v1/fabric")
	if err != nil {
		return err
	}
	defer r.Body.Close()
	var view struct {
		Fabric struct {
			HealthyWorkers   int   `json:"healthy_workers"`
			ChunksDispatched int64 `json:"chunks_dispatched"`
			ChunksStolen     int64 `json:"chunks_stolen"`
			ChunksRerouted   int64 `json:"chunks_rerouted"`
		} `json:"fabric"`
		ClusterStats struct {
			Solves    int64 `json:"solves"`
			CacheHits int64 `json:"cache_hits"`
		} `json:"cluster_stats"`
	}
	if err := json.NewDecoder(r.Body).Decode(&view); err != nil {
		return err
	}
	f := view.Fabric
	fmt.Printf("fabric: %d/%d workers healthy, %d chunks dispatched, %d stolen, %d rerouted\n",
		f.HealthyWorkers, n, f.ChunksDispatched, f.ChunksStolen, f.ChunksRerouted)
	note := "the kill landed before any worker finished a point"
	if view.ClusterStats.CacheHits > 0 {
		note = "points solved before the kill replayed from warm worker caches"
	}
	fmt.Printf("cluster: %d solver runs, %d cache hits — %s\n",
		view.ClusterStats.Solves, view.ClusterStats.CacheHits, note)
	return nil
}
