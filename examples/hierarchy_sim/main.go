// hierarchy_sim runs a small end-to-end simulation of the complete
// memory hierarchy — CACTI-D projections feeding the architectural
// simulator — for one benchmark on two system configurations, and
// prints the performance and power comparison. A miniature of the
// paper's full LLC study.
package main

import (
	"fmt"
	"log"

	"cactid/internal/study"
)

func main() {
	// Scale 8 and a small instruction budget keep this example quick.
	s, err := study.New(8, 4_000_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Memory hierarchy (CACTI-D projections at 32nm):")
	fmt.Printf("  L1 32KB:  %.2fns access, %.3gnJ/read\n", s.L1.AccessTime*1e9, s.L1.EReadPerAccess*1e9)
	fmt.Printf("  L2 1MB:   %.2fns access, %.3gnJ/read\n", s.L2.AccessTime*1e9, s.L2.EReadPerAccess*1e9)
	fmt.Printf("  L3 192MB COMM-DRAM: %.2fns access, leak %.3gW\n",
		s.L3["cm_dram_c"].AccessTime*1e9, s.L3["cm_dram_c"].LeakagePower)
	fmt.Printf("  Main memory: %v\n\n", s.MemChip)

	for _, cfg := range []string{"nol3", "cm_dram_c"} {
		r, err := s.Run("ft.B", cfg, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ft.B on %-10s IPC %.2f, avg read latency %.0f cycles\n", cfg, r.Sim.IPC, r.Sim.AvgReadLatency)
		fmt.Printf("  memory hierarchy power %.2fW, system power %.2fW\n",
			r.Power.MemoryHierarchy(), r.Power.System())
	}
	fmt.Println("\nAdding the stacked 192MB COMM-DRAM L3 filters most main-memory traffic at")
	fmt.Println("almost no standby-power cost - the paper's headline result.")
}
