// llc_tradeoff sweeps last-level-cache design points across the three
// memory technologies under a fixed silicon area budget — the core
// question of the paper's LLC study: how much cache, at what speed
// and standby power, does each technology buy for the same die area?
package main

import (
	"fmt"
	"log"

	"cactid/internal/core"
	"cactid/internal/tech"
)

const areaBudgetMM2 = 50.0 // stacked die budget

func main() {
	fmt.Printf("LLC options within a %.0f mm^2 stacked-die budget (32nm, 8 banks, 64B lines):\n\n", areaBudgetMM2)
	fmt.Printf("%-10s %8s %9s %9s %9s %9s %9s %9s\n",
		"tech", "capacity", "acc(ns)", "int(ns)", "area", "eff(%)", "leak(W)", "refr(W)")

	type opt struct {
		ram  tech.RAMType
		mode core.AccessMode
		page int
	}
	for _, o := range []opt{
		{tech.SRAM, core.Normal, 0},
		{tech.LPDRAM, core.Sequential, 8192},
		{tech.COMMDRAM, core.Sequential, 8192},
	} {
		// Grow capacity until the area budget is exceeded.
		var best *core.Solution
		for capMB := int64(8); capMB <= 512; capMB *= 2 {
			sol, err := core.Optimize(core.Spec{
				Node: tech.Node32, RAM: o.ram,
				CapacityBytes: capMB << 20, BlockBytes: 64,
				Associativity: 8, Banks: 8,
				IsCache: true, Mode: o.mode, PageBits: o.page,
				MaxPipelineStages: 6, MaxAreaConstraint: 0.1,
			})
			if err != nil {
				if capMB == 8 {
					log.Fatalf("%v: %v", o.ram, err)
				}
				break
			}
			if sol.Area*1e6 > areaBudgetMM2 {
				break
			}
			best = sol
		}
		if best == nil {
			fmt.Printf("%-10s does not fit\n", o.ram)
			continue
		}
		fmt.Printf("%-10s %7dMB %9.2f %9.2f %9.2f %9.0f %9.3g %9.3g\n",
			best.Spec.RAM, best.Spec.CapacityBytes>>20,
			best.AccessTime*1e9, best.InterleaveCycle*1e9,
			best.Area*1e6, best.AreaEff*100, best.LeakagePower, best.RefreshPower)
	}
	fmt.Println("\nThe paper's conclusion in miniature: commodity DRAM buys over an order of")
	fmt.Println("magnitude more capacity than SRAM in the same area at a small fraction of the")
	fmt.Println("standby power, trading access latency.")
}
