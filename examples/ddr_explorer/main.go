// ddr_explorer walks the main-memory DRAM chip design space: page
// size, burst length and interface rate against the resulting timing
// and command energies — the knobs Section 2.1 of the paper adds to
// CACTI-D.
package main

import (
	"fmt"
	"log"

	"cactid/internal/dram"
	"cactid/internal/tech"
)

func main() {
	t := tech.New(78)

	fmt.Println("1Gb x8 commodity DRAM at 78nm: page-size sweep (DDR3-1066, BL8)")
	fmt.Printf("%8s %9s %8s %8s %8s %10s %10s\n", "page", "eff(%)", "tRCD", "tRC", "tRRD", "ACT(nJ)", "refr(mW)")
	for _, page := range []int{4096, 8192, 16384} {
		c, err := dram.NewChip(dram.ChipConfig{
			Tech: t, CapacityBits: 1 << 30, Banks: 8, DataPins: 8,
			BurstLength: 8, PageBits: page, DataRateMTps: 1066,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7db %9.1f %7.1fn %7.1fn %7.1fn %10.2f %10.2f\n",
			page, c.AreaEff*100, c.Timing.TRCD*1e9, c.Timing.TRC*1e9,
			c.Timing.TRRD*1e9, c.EActivate*1e9, c.RefreshPower*1e3)
	}

	fmt.Println("\nData-rate sweep (8Gb x8 at 32nm, 8Kb page, BL8)")
	fmt.Printf("%8s %9s %8s %10s %10s %12s\n", "MT/s", "CL(ns)", "tRC", "RD(nJ)", "burst(ns)", "standby(mW)")
	for _, rate := range []float64{1600, 2400, 3200} {
		c, err := dram.NewChip(dram.ChipConfig{
			Tech: tech.New(tech.Node32), CapacityBits: 8 << 30, Banks: 8, DataPins: 8,
			BurstLength: 8, PageBits: 8192, DataRateMTps: rate,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.0f %9.2f %7.1fn %10.2f %10.2f %12.1f\n",
			rate, c.Timing.CAS*1e9, c.Timing.TRC*1e9, c.ERead*1e9,
			c.Timing.TBurst*1e9, c.StandbyPower*1e3)
	}

	fmt.Println("\nBurst-length tradeoff (1Gb x8, 78nm, 8Kb page, DDR3-1066)")
	fmt.Printf("%6s %10s %10s %12s\n", "BL", "RD(nJ)", "burst(ns)", "nJ per byte")
	for _, bl := range []int{4, 8} {
		c, err := dram.NewChip(dram.ChipConfig{
			Tech: t, CapacityBits: 1 << 30, Banks: 8, DataPins: 8,
			BurstLength: bl, PageBits: 8192, DataRateMTps: 1066,
		})
		if err != nil {
			log.Fatal(err)
		}
		bytes := float64(bl * 8 / 8)
		fmt.Printf("%6d %10.2f %10.2f %12.3f\n", bl, c.ERead*1e9, c.Timing.TBurst*1e9, c.ERead*1e9/bytes)
	}
}
