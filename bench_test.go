// Package cactid's root benchmark harness regenerates every table and
// figure of the paper, one benchmark per artifact:
//
//	BenchmarkTable1              - technology characteristics (Table 1)
//	BenchmarkFigure1Xeon         - 65nm Xeon L3 SRAM validation sweep (Figure 1)
//	BenchmarkTable2Micron        - 78nm Micron DDR3-1066 validation (Table 2)
//	BenchmarkTable3Projections   - 32nm hierarchy projections (Table 3)
//	BenchmarkFigure4aIPC         - IPC / read latency runs (Figure 4a)
//	BenchmarkFigure4bBreakdown   - execution-cycle breakdown (Figure 4b)
//	BenchmarkFigure5aPower       - memory-hierarchy power (Figure 5a)
//	BenchmarkFigure5bEDP         - system power + energy-delay (Figure 5b)
//	BenchmarkThermal             - stacked-die thermal check (Section 4.3)
//
// plus micro-benchmarks of the substrates (solver enumeration, mat
// evaluation, DRAM chip model, simulator throughput). Run with:
//
//	go test -bench=. -benchmem
package cactid

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"

	"cactid/internal/array"
	"cactid/internal/core"
	"cactid/internal/dram"
	"cactid/internal/explore"
	"cactid/internal/mat"
	"cactid/internal/sim/stats"
	"cactid/internal/study"
	"cactid/internal/tech"
	"cactid/internal/validate"
)

var (
	studyOnce sync.Once
	theStudy  *study.Study
	studyErr  error
)

func getStudy(b *testing.B) *study.Study {
	b.Helper()
	studyOnce.Do(func() {
		theStudy, studyErr = study.New(8, 2_000_000)
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return theStudy
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := tech.Table1(tech.Node32); len(rows) != 9 {
			b.Fatal("Table 1 wrong")
		}
	}
}

func BenchmarkFigure1Xeon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := validate.Xeon()
		if err != nil || r.AvgError > 0.25 {
			b.Fatalf("Xeon validation failed: %v / %.2f", err, r.AvgError)
		}
	}
}

func BenchmarkTable2Micron(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := validate.Micron()
		if err != nil || validate.AvgAbsError(rows) > 0.16 {
			b.Fatal("Micron validation failed")
		}
	}
}

func BenchmarkTable3Projections(b *testing.B) {
	s := getStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := s.Table3(); len(rows) != 8 {
			b.Fatal("Table 3 wrong")
		}
	}
}

// figureRun executes a representative slice of the study sweep (one
// L3-sensitive and one L3-insensitive benchmark on the paper's
// baseline and best configurations).
func figureRun(b *testing.B) map[string]map[string]*study.RunResult {
	b.Helper()
	s := getStudy(b)
	runs := map[string]map[string]*study.RunResult{}
	for _, bm := range []string{"ft.B", "cg.C"} {
		runs[bm] = map[string]*study.RunResult{}
		for _, cn := range []string{"nol3", "sram", "cm_dram_c"} {
			r, err := s.Run(bm, cn, 42)
			if err != nil {
				b.Fatal(err)
			}
			runs[bm][cn] = r
		}
	}
	return runs
}

func BenchmarkFigure4aIPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := figureRun(b)
		if runs["ft.B"]["cm_dram_c"].Sim.IPC <= runs["ft.B"]["nol3"].Sim.IPC {
			b.Fatal("Figure 4a shape violated: L3 must help ft.B")
		}
	}
}

func BenchmarkFigure4bBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := figureRun(b)
		no := runs["ft.B"]["nol3"].Sim.Breakdown
		if no.Mem <= no.Busy {
			b.Fatal("Figure 4b shape violated: nol3 ft.B must be memory-bound")
		}
	}
}

func BenchmarkFigure5aPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := figureRun(b)
		sram := runs["cg.C"]["sram"].Power
		cm := runs["cg.C"]["cm_dram_c"].Power
		if sram.MemoryHierarchy() <= cm.MemoryHierarchy() {
			b.Fatal("Figure 5a shape violated: SRAM L3 must burn more than COMM-DRAM")
		}
	}
}

func BenchmarkFigure5bEDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := figureRun(b)
		if runs["ft.B"]["cm_dram_c"].EDP >= runs["ft.B"]["nol3"].EDP {
			b.Fatal("Figure 5b shape violated: COMM-DRAM L3 must improve ft.B EDP")
		}
	}
}

func BenchmarkThermal(b *testing.B) {
	s := getStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := s.ThermalDelta()
		if err != nil || d > 1.5 {
			b.Fatalf("thermal check failed: %v / %.2fK", err, d)
		}
	}
}

// ---- substrate micro-benchmarks ----

func BenchmarkMatModel(b *testing.B) {
	t := tech.New(tech.Node32)
	for i := 0; i < b.N; i++ {
		if _, err := mat.New(mat.Config{Tech: t, RAM: tech.COMMDRAM, Rows: 512, Cols: 512, DegBLMux: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArrayEnumerate(b *testing.B) {
	t := tech.New(tech.Node32)
	spec := array.Spec{Tech: t, RAM: tech.SRAM, CapacityBytes: 1 << 20, OutputBits: 512, AssocReadout: 1}
	for i := 0; i < b.N; i++ {
		if banks := array.Enumerate(spec); len(banks) == 0 {
			b.Fatal("no organizations")
		}
	}
}

func BenchmarkSolverOptimize(b *testing.B) {
	spec := core.Spec{
		Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 4 << 20,
		BlockBytes: 64, Associativity: 8, IsCache: true,
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// solveSpecs are the representative single-solve workloads tracked in
// BENCH_solve.json: an SRAM cache, a sequential-mode COMM-DRAM cache
// (the LLC study's configuration style) and a plain COMM-DRAM memory,
// each at 45 and 32 nm.
func solveSpecs() map[string]core.Spec {
	specs := map[string]core.Spec{}
	for _, node := range []tech.Node{tech.Node45, tech.Node32} {
		specs[fmt.Sprintf("sram-cache-%d", node)] = core.Spec{
			Node: node, RAM: tech.SRAM, CapacityBytes: 4 << 20,
			BlockBytes: 64, Associativity: 8, IsCache: true,
		}
		specs[fmt.Sprintf("dram-cache-seq-%d", node)] = core.Spec{
			Node: node, RAM: tech.COMMDRAM, CapacityBytes: 64 << 20,
			BlockBytes: 64, Associativity: 8, IsCache: true,
			Mode: core.Sequential, PageBits: 8192, MaxPipelineStages: 6,
		}
		specs[fmt.Sprintf("dram-plain-%d", node)] = core.Spec{
			Node: node, RAM: tech.COMMDRAM, CapacityBytes: 64 << 20,
			BlockBytes: 64, PageBits: 8192,
		}
	}
	return specs
}

// BenchmarkSolve measures one cold core.Optimize call — the cost of
// every /v1/solve request and every cold-cache sweep cell. Run with
// `make bench` for benchstat-ready output.
func BenchmarkSolve(b *testing.B) {
	specs := solveSpecs()
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		spec := specs[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Optimize(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDRAMChip(b *testing.B) {
	t78 := tech.New(78)
	for i := 0; i < b.N; i++ {
		_, err := dram.NewChip(dram.ChipConfig{
			Tech: t78, CapacityBits: 1 << 30, Banks: 8, DataPins: 8,
			BurstLength: 8, PageBits: 8192, DataRateMTps: 1066,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// sweepSpecs is a 64-point SRAM cache grid (4 capacities x 4
// associativities x 2 block sizes x 2 access modes) for the
// exploration-engine benchmarks.
func sweepSpecs(b *testing.B) []core.Spec {
	b.Helper()
	g := explore.Grid{
		Base: core.Spec{Node: tech.Node32, RAM: tech.SRAM, IsCache: true,
			MaxPipelineStages: 6},
		Capacities: []int64{32 << 10, 64 << 10, 128 << 10, 256 << 10},
		Assocs:     []int{1, 2, 4, 8},
		Blocks:     []int{32, 64},
		Modes:      []core.AccessMode{core.Normal, core.Sequential},
	}
	specs, skipped := g.Expand()
	if len(specs) != 64 || skipped != 0 {
		b.Fatalf("grid expanded to %d specs, %d skipped", len(specs), skipped)
	}
	return specs
}

func checkSweep(b *testing.B, results []explore.Result) {
	b.Helper()
	for _, r := range results {
		if r.Err != nil || r.Solution == nil {
			b.Fatalf("point %d failed: %v", r.Index, r.Err)
		}
	}
}

// BenchmarkExploreSweep measures the batch engine over the 64-point
// grid: serial vs parallel worker pools, cold vs warm result cache.
// The warm case is the zero-solver-call path every repeated or
// overlapping sweep takes.
func BenchmarkExploreSweep(b *testing.B) {
	specs := sweepSpecs(b)
	ctx := context.Background()
	b.Run("serial-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := explore.New(explore.Options{Workers: 1})
			checkSweep(b, e.Sweep(ctx, specs))
		}
		b.ReportMetric(float64(len(specs)), "points/op")
	})
	b.Run("parallel-cold", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			e := explore.New(explore.Options{Workers: workers})
			checkSweep(b, e.Sweep(ctx, specs))
		}
		b.ReportMetric(float64(len(specs)), "points/op")
	})
	b.Run("parallel-warm", func(b *testing.B) {
		e := explore.New(explore.Options{})
		checkSweep(b, e.Sweep(ctx, specs)) // fill the cache
		before := e.Stats().Solves
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			checkSweep(b, e.Sweep(ctx, specs))
		}
		b.StopTimer()
		if e.Stats().Solves != before {
			b.Fatal("warm sweep re-ran the solver")
		}
		b.ReportMetric(float64(len(specs)), "points/op")
	})
}

func BenchmarkSimulator(b *testing.B) {
	s := getStudy(b)
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		r, err := s.Run("ua.C", "cm_dram_c", uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		instrs += r.Sim.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func BenchmarkPowerModel(b *testing.B) {
	s := getStudy(b)
	r, err := s.Run("cg.C", "lp_dram_ed", 1)
	if err != nil {
		b.Fatal(err)
	}
	e := s.Energies("lp_dram_ed")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := stats.Compute(r.Sim, e)
		if p.System() <= 0 {
			b.Fatal("bad power")
		}
	}
}
