module cactid

go 1.22
