// Ablation benchmarks for the design choices DESIGN.md calls out:
// each isolates one knob of the model or the study and verifies the
// tradeoff it is supposed to buy, reporting the measured deltas as
// benchmark metrics.
//
//	BenchmarkAblationRepeaterSlack   - max-repeater-delay constraint (Section 2.4)
//	BenchmarkAblationSleepTransistors- Xeon-style leakage control (Section 2.5)
//	BenchmarkAblationAccessMode      - normal vs sequential cache access (Section 3.4)
//	BenchmarkAblationPagePolicy      - open vs closed page main memory (Section 2.1)
//	BenchmarkAblationPageMapping     - Figure 3 set-to-page mappings (Section 3.4)
//	BenchmarkAblationPowerDown       - DRAM power-down modes (Section 6)
//	BenchmarkAblationEDvsC           - config ED vs config C optimizer targets (Section 4.1)
package cactid

import (
	"testing"

	"cactid/internal/core"
	simpkg "cactid/internal/sim"
	"cactid/internal/sim/memctl"
	"cactid/internal/sim/workload"
	"cactid/internal/tech"
)

func BenchmarkAblationRepeaterSlack(b *testing.B) {
	base := core.Spec{
		Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 16 << 20,
		BlockBytes: 64, Associativity: 8, IsCache: true,
	}
	relaxed := base
	relaxed.MaxRepeaterSlack = 0.5
	var dAcc, dE float64
	for i := 0; i < b.N; i++ {
		s0, err0 := core.Optimize(base)
		s1, err1 := core.Optimize(relaxed)
		if err0 != nil || err1 != nil {
			b.Fatal(err0, err1)
		}
		dAcc = s1.AccessTime/s0.AccessTime - 1
		dE = 1 - s1.EReadPerAccess/s0.EReadPerAccess
	}
	b.ReportMetric(dAcc*100, "%acc-penalty")
	b.ReportMetric(dE*100, "%energy-saved")
}

func BenchmarkAblationSleepTransistors(b *testing.B) {
	base := core.Spec{
		Node: tech.Node65, RAM: tech.SRAM, CapacityBytes: 16 << 20,
		BlockBytes: 64, Associativity: 16, IsCache: true, Mode: core.Sequential,
	}
	slept := base
	slept.SleepTransistors = true
	var saving float64
	for i := 0; i < b.N; i++ {
		s0, err0 := core.Optimize(base)
		s1, err1 := core.Optimize(slept)
		if err0 != nil || err1 != nil {
			b.Fatal(err0, err1)
		}
		saving = 1 - s1.LeakagePower/s0.LeakagePower
		if saving <= 0 {
			b.Fatal("sleep transistors saved nothing")
		}
	}
	b.ReportMetric(saving*100, "%leak-saved")
}

func BenchmarkAblationAccessMode(b *testing.B) {
	normal := core.Spec{
		Node: tech.Node32, RAM: tech.SRAM, CapacityBytes: 8 << 20,
		BlockBytes: 64, Associativity: 8, IsCache: true, Mode: core.Normal,
	}
	seq := normal
	seq.Mode = core.Sequential
	var dE, dT float64
	for i := 0; i < b.N; i++ {
		n, err0 := core.Optimize(normal)
		s, err1 := core.Optimize(seq)
		if err0 != nil || err1 != nil {
			b.Fatal(err0, err1)
		}
		dE = 1 - s.EReadPerAccess/n.EReadPerAccess
		dT = s.AccessTime/n.AccessTime - 1
	}
	b.ReportMetric(dE*100, "%energy-saved")
	b.ReportMetric(dT*100, "%latency-penalty")
}

// ablationSimConfig builds a small simulation for the page-policy and
// power-down ablations.
func ablationSimConfig(b *testing.B, policy memctl.PagePolicy, powerDown bool) simpkg.Config {
	b.Helper()
	p, err := workload.ByName("ft.B")
	if err != nil {
		b.Fatal(err)
	}
	p.HotBytes /= 8
	p.WSBytes /= 8
	return simpkg.Config{
		Cores: 8, ThreadsPerCore: 4, LineBytes: 64,
		L1Bytes: 4 << 10, L1Ways: 8, L2Bytes: 128 << 10, L2Ways: 8,
		L1HitCycles: 2, L2HitCycles: 3,
		Mem: memctl.Config{
			Channels: 2, BanksPerChannel: 8, PageBytes: 8192, LineBytes: 64,
			Policy:    policy,
			Timing:    memctl.Timing{TRCD: 21, CAS: 14, TRP: 15, TRAS: 78, TRC: 99, TRRD: 5, Burst: 3},
			PowerDown: powerDown, PowerDownAfter: 200, WakeupCycles: 12,
		},
		Workload: p, InstrBudget: 2_000_000, WarmupFrac: 0.25, Seed: 42,
	}
}

func BenchmarkAblationPagePolicy(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		open := simpkg.Run(ablationSimConfig(b, memctl.OpenPage, false))
		closed := simpkg.Run(ablationSimConfig(b, memctl.ClosedPage, false))
		ratio = float64(closed.Cycles) / float64(open.Cycles)
	}
	b.ReportMetric(ratio, "closed/open-cycles")
}

func BenchmarkAblationPageMapping(b *testing.B) {
	s := getStudy(b)
	var setMapped, striped float64
	for i := 0; i < b.N; i++ {
		r, err := s.Run("sp.C", "cm_dram_c", 42)
		if err != nil {
			b.Fatal(err)
		}
		ev := r.Sim.Events
		if ev.L3PageProbes == 0 {
			b.Fatal("no page probes")
		}
		setMapped = float64(ev.L3PageHitsSetMapped) / float64(ev.L3PageProbes)
		striped = float64(ev.L3PageHitsStriped) / float64(ev.L3PageProbes)
	}
	b.ReportMetric(setMapped*100, "%pagehit-setmapped")
	b.ReportMetric(striped*100, "%pagehit-striped")
}

func BenchmarkAblationPowerDown(b *testing.B) {
	s := getStudy(b)
	var saving, slowdown float64
	for i := 0; i < b.N; i++ {
		without, with, err := s.PowerDownExperiment("ua.C", "cm_dram_c", 42)
		if err != nil {
			b.Fatal(err)
		}
		saving = 1 - with.Power.MemStandby/without.Power.MemStandby
		slowdown = float64(with.Sim.Cycles)/float64(without.Sim.Cycles) - 1
	}
	b.ReportMetric(saving*100, "%standby-saved")
	b.ReportMetric(slowdown*100, "%slowdown")
}

func BenchmarkAblationEDvsC(b *testing.B) {
	s := getStudy(b)
	var cycleRatio, effRatio float64
	for i := 0; i < b.N; i++ {
		ed := s.L3["cm_dram_ed"]
		c := s.L3["cm_dram_c"]
		cycleRatio = c.InterleaveCycle / ed.InterleaveCycle
		effRatio = c.AreaEff / ed.AreaEff
		if cycleRatio <= 1 {
			b.Fatal("config C should cycle slower than config ED")
		}
	}
	b.ReportMetric(cycleRatio, "C/ED-cycle")
	b.ReportMetric(effRatio, "C/ED-efficiency")
}
